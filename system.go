package gcsteering

import (
	"fmt"
	"io"
	"math/rand"

	"errors"

	"gcsteering/internal/core"
	"gcsteering/internal/fault"
	"gcsteering/internal/health"
	"gcsteering/internal/metrics"
	"gcsteering/internal/obs"
	"gcsteering/internal/raid"
	"gcsteering/internal/rebuild"
	"gcsteering/internal/sched"
	"gcsteering/internal/scrub"
	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
	"gcsteering/internal/trace"
	"gcsteering/internal/workload"
)

// Trace and Record re-export the trace model for the public API.
type (
	// Trace is an ordered sequence of I/O requests.
	Trace = trace.Trace
	// Record is one I/O request.
	Record = trace.Record
	// Profile is a synthetic workload description.
	Profile = workload.Profile
	// LatencySummary holds response-time statistics (nanoseconds).
	LatencySummary = metrics.Summary
	// SteeringStats exposes the redirector's counters.
	SteeringStats = core.Stats
	// Time is a simulated instant/duration in nanoseconds.
	Time = sim.Time
	// Tracer is the structured event tracer (see Config.Trace). The emitted
	// stream is newline-delimited JSON; the schema is documented in
	// internal/obs and README.md.
	Tracer = obs.Tracer
	// Recorder is the windowed time-series collector behind Results.Series.
	Recorder = metrics.Recorder
	// ScrubStats exposes the patrol scrubber's counters (Results.Scrub).
	ScrubStats = scrub.Stats
)

// NewTracer returns a structured event tracer writing JSON lines to w.
// Assign it to Config.Trace and call Flush after the run.
func NewTracer(w io.Writer) *Tracer { return obs.New(w) }

// Profiles returns the paper's eight Table I workload profiles.
func Profiles() []Profile { return workload.All() }

// ProfileByName returns the named Table I profile.
func ProfileByName(name string) (Profile, bool) { return workload.ByName(name) }

// System is one assembled storage system: an engine, the member SSDs, the
// RAID array, the selected GC scheme, and (for SchemeSteering) the
// steering controller and staging space.
type System struct {
	cfg Config

	eng   *sim.Engine
	devs  []*ssd.Device
	disks []raid.Disk
	arr   *raid.Array
	hub   *sched.Hub
	ggc   *sched.GGC
	steer *core.Steering
	spare *ssd.Device // dedicated staging and/or rebuild spare

	lat       metrics.Hist
	readLat   metrics.Hist
	writeLat  metrics.Hist
	degLat    metrics.Hist // requests submitted while the array was degraded
	gcLat     metrics.Hist // submitted while >= 1 member collected (not degraded)
	gcRdLat   metrics.Hist // the read-only subset of gcLat (hedged-read target)
	quietLat  metrics.Hist // submitted with no GC and full redundancy
	rec       *metrics.Recorder
	gcGauge   metrics.Gauge // gc_active, sampled once per arrival
	stGauge   metrics.Gauge // staging_free_write_slots (steering only)
	quarGauge metrics.Gauge // quarantined_devices (health monitor only)
	inflGauge metrics.Gauge // inflight, sampled once per arrival
	trace     *obs.Tracer
	reqSeq    int64
	inFlight  int

	// arrivalLag, normally zero, is the stall a power-loss replay charges
	// the next submitted request: a request that arrived while the
	// remounted array was still resyncing is submitted at gate-open with
	// the wait folded into its recorded response time.
	arrivalLag int64

	deadlineHits int64 // requests cancelled at their deadline
	rejected     int64 // requests refused by admission control

	faults   *fault.Controller // non-nil for ReplayWithFaults runs
	scrubber *scrub.Scrubber   // non-nil when Config.ScrubMBps > 0
	health   *health.Monitor   // non-nil when Config.Quarantine
	nrepl    int               // replacement SSDs created so far (device IDs)
	busy     *busyLog          // non-nil when Config.RecordBusy

	// onRequest, when set via ObserveRequests, fires once per submitted
	// request as it settles (completes, hits its deadline, or is rejected).
	onRequest func(seq int64, latNs int64, rejected bool)

	// measuring gates response-time recording; ReplayDuringRebuild stops
	// recording when reconstruction completes so the results describe the
	// recovery period, as the paper's Fig. 11 does.
	measuring       bool
	rebuildActive   bool
	rebuildDuration sim.Time
}

// New builds and warms up a system.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		eng:   sim.NewEngine(),
		rec:   metrics.NewRecorder(int64(100*sim.Millisecond), cfg.WindowQuantiles),
		trace: cfg.Trace,
	}
	s.gcGauge = s.rec.GaugeHandle("gc_active")
	// Registered for every scheme (only steering ever sets it) so multi-run
	// CSV exports share one column schema regardless of the scheme mix.
	s.stGauge = s.rec.GaugeHandle("staging_free_write_slots")
	// Same rationale: always in the schema, driven only when the feature is
	// enabled.
	s.quarGauge = s.rec.GaugeHandle("quarantined_devices")
	s.inflGauge = s.rec.GaugeHandle("inflight")
	if cfg.WindowQuantiles {
		// Detailed-series mode also samples engine pressure: queue depth
		// every 64 fired events, folded into the same window grid.
		s.eng.SetProbe(64, func(now sim.Time, pending int) {
			s.rec.SetGauge("engine_pending", int64(now), float64(pending))
		})
	}
	devCfg := ssd.Config{
		Geometry:        cfg.Flash,
		Latency:         cfg.Latency,
		GCLowWater:      cfg.GCLowWater,
		GCHighWater:     cfg.GCHighWater,
		ForcedGCVictims: cfg.ForcedGCVictims,
		GCOverhead:      sim.Time(cfg.GCOverheadMs * float64(sim.Millisecond)),
	}
	//lint:allow nodeterm root stream: every per-device seed below derives from Config.Seed through it
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Disks; i++ {
		d, err := ssd.New(i, s.eng, devCfg)
		if err != nil {
			return nil, err
		}
		if cfg.ColdStreamStaging {
			d.SetColdBoundary(cfg.diskPages()) // reserved region on a separate stream
		}
		d.Trace = cfg.Trace
		//lint:allow nodeterm per-device prefill stream seeded from the root stream, stable in loop order
		d.Prefill(rand.New(rand.NewSource(rng.Int63())), cfg.PrefillOverwrite, cfg.diskPages())
		s.devs = append(s.devs, d)
		s.disks = append(s.disks, d)
	}
	lay := raid.Layout{
		Level:     cfg.Level,
		Disks:     cfg.Disks,
		UnitPages: cfg.unitPages(),
		DiskPages: cfg.diskPages(),
	}
	arr, err := raid.NewArray(s.eng, lay, s.disks)
	if err != nil {
		return nil, err
	}
	arr.Trace = cfg.Trace
	arr.VerifyReads = cfg.Checksums
	arr.HedgedReads = cfg.HedgedReads
	s.arr = arr
	s.hub = sched.NewHub(s.devs)

	switch cfg.Scheme {
	case SchemeLGC:
		sched.LGC{}.Attach(s.hub)
	case SchemeGGC:
		s.ggc = &sched.GGC{}
		s.ggc.Attach(s.hub)
	case SchemeSteering:
		staging, err := s.buildStaging(rng)
		if err != nil {
			return nil, err
		}
		st, err := core.New(s.eng, arr, staging, core.Config{
			HotFrac:            cfg.HotFrac,
			MigrateHotReads:    cfg.MigrateHotReads,
			ReclaimMerge:       cfg.ReclaimMerge,
			MigrateThreshold:   cfg.MigrateThreshold,
			ScanThresholdPages: cfg.ScanThresholdPages,
		})
		if err != nil {
			return nil, err
		}
		st.Trace = cfg.Trace
		s.steer = st
		if cfg.DisableGCAwareWrites {
			arr.GCAwareWrites = false
		}
		s.hub.SubscribeEnd(func(now sim.Time, d *ssd.Device) { st.OnDeviceGCEnd(now, d.ID) })
	default:
		return nil, fmt.Errorf("gcsteering: unknown scheme %v", cfg.Scheme)
	}

	if cfg.RecordBusy {
		s.busy = newBusyLog(cfg.Disks)
		s.hub.SubscribeStart(func(now sim.Time, d *ssd.Device) { s.busy.note(BusyGC, d.ID, now, true) })
		s.hub.SubscribeEnd(func(now sim.Time, d *ssd.Device) { s.busy.note(BusyGC, d.ID, now, false) })
	}

	// Robustness wiring: retries with backoff, admission control, and the
	// fail-slow health monitor. All of it is inert (and byte-identical to a
	// run without it) until a fault plan or queue pressure exercises it.
	arr.MaxRetries = cfg.MaxRetries
	backoff := sim.Time(cfg.RetryBackoffUs * float64(sim.Microsecond))
	if cfg.MaxRetries > 0 && backoff == 0 {
		backoff = 200 * sim.Microsecond
	}
	arr.RetryBackoff = backoff
	arr.QueueLimit = cfg.QueueLimit
	if cfg.QueueLimit > 0 && s.steer != nil {
		s.steer.Pressure = arr.UnderPressure
	}
	if cfg.Quarantine {
		mon := health.NewMonitor(s.eng, cfg.Disks, health.Config{})
		mon.Trace = cfg.Trace
		mon.Probe = func(now sim.Time, dev int) {
			// One-page probe read; the op hook below judges it synchronously.
			// A failed member rejects the read — the probe then observes
			// nothing and the breaker stays open until the slot is repaired.
			_ = s.devs[dev].Read(now, 0, 1, nil)
		}
		s.hub.SubscribeOp(func(now sim.Time, d *ssd.Device, write bool, pages int, lat, svc sim.Time) {
			// Health is judged on service time, not completion latency: a
			// burst backlog inflates queueing on a healthy member, while a
			// fail-slow fault inflates the op's own channel time.
			mon.Observe(now, d.ID, pages, svc, d.InGC(now))
		})
		mon.OnChange = func(now sim.Time, dev int, open bool) {
			s.quarGauge.Set(int64(now), float64(mon.OpenCount()))
			if s.busy != nil {
				s.busy.note(BusyBreaker, dev, now, open)
			}
			if !open && s.steer != nil {
				// Reinstatement kicks the reclaim drain, like a GC-end event:
				// write-backs deferred while the member was quarantined resume.
				s.steer.OnDeviceGCEnd(now, dev)
			}
		}
		arr.Quarantined = func(now sim.Time, d int) bool { return mon.Quarantined(d) }
		if s.steer != nil {
			s.steer.Unhealthy = func(now sim.Time, disk int) bool { return mon.Quarantined(disk) }
		}
		s.health = mon
	}
	return s, nil
}

// rebuildReservePages is the slice at the top of each member's reserved
// region set aside for parallel reconstruction (it must not collide with
// the staging allocator's slots). It is large enough to hold an equal
// share of a failed member's contents when the reservation allows,
// otherwise capped at two thirds of the reservation.
func (s *System) rebuildReservePages() int {
	reserved := s.cfg.Flash.LogicalPages() - s.cfg.diskPages()
	if s.cfg.Scheme != SchemeSteering || s.cfg.Staging != StagingReserved {
		return 0
	}
	unit := s.cfg.unitPages()
	need := (s.cfg.diskPages()/(s.cfg.Disks-1)/unit + 1) * unit
	if max := reserved * 2 / 3; need > max {
		need = max
	}
	return need
}

// buildStaging assembles the configured staging space.
func (s *System) buildStaging(rng *rand.Rand) (core.Staging, error) {
	switch s.cfg.Staging {
	case StagingReserved:
		reserved := s.cfg.Flash.LogicalPages() - s.cfg.diskPages()
		reserved -= s.rebuildReservePages()
		return core.NewReservedStaging(s.disks, s.cfg.diskPages(), reserved, s.cfg.StagingReadFrac)
	case StagingDedicated:
		spare, err := s.ensureSpare(rng.Int63())
		if err != nil {
			return nil, err
		}
		return core.NewDedicatedStaging(spare, s.cfg.StagingReadFrac)
	default:
		return nil, fmt.Errorf("gcsteering: unknown staging kind %v", s.cfg.Staging)
	}
}

// ensureSpare lazily creates the spare SSD.
func (s *System) ensureSpare(seed int64) (*ssd.Device, error) {
	if s.spare != nil {
		return s.spare, nil
	}
	devCfg := ssd.Config{
		Geometry:        s.cfg.Flash,
		Latency:         s.cfg.Latency,
		GCLowWater:      s.cfg.GCLowWater,
		GCHighWater:     s.cfg.GCHighWater,
		ForcedGCVictims: s.cfg.ForcedGCVictims,
		GCOverhead:      sim.Time(s.cfg.GCOverheadMs * float64(sim.Millisecond)),
	}
	spare, err := ssd.New(s.cfg.Disks, s.eng, devCfg)
	if err != nil {
		return nil, err
	}
	// The spare starts fresh: it holds no host data until it is used as a
	// staging space or a rebuild target.
	spare.SetColdBoundary(0)
	spare.Trace = s.trace
	//lint:allow nodeterm spare prefill stream: seed is threaded in from the Config.Seed-derived root stream
	spare.Prefill(rand.New(rand.NewSource(seed)), 0, 0)
	s.spare = spare
	return spare, nil
}

// Capacity returns the array's logical capacity in bytes; generated
// workloads should target it.
func (s *System) Capacity() int64 {
	return int64(s.arr.Layout().LogicalPages()) * int64(s.cfg.Flash.PageSize)
}

// GenerateWorkload synthesizes up to maxRequests of the named Table I
// profile sized to this system's capacity (maxRequests <= 0 keeps the full
// published request count).
func (s *System) GenerateWorkload(profile string, maxRequests int) (Trace, error) {
	p, ok := workload.ByName(profile)
	if !ok {
		return nil, fmt.Errorf("gcsteering: unknown profile %q (have %v)", profile, workload.Names())
	}
	return workload.Generate(p, workload.Options{
		Capacity:    s.Capacity(),
		MaxRequests: maxRequests,
		Seed:        s.cfg.Seed + 7,
	})
}

// submit issues one request to the array and records its response time.
// It is a gcsvet hot-path root: it runs once per replayed request (the
// arrival cursor calls it from inside Engine.Run), so hotalloc holds it
// and everything it reaches allocation-free.
//
//gcsvet:hot
func (s *System) submit(now sim.Time, r Record) {
	page, pages := r.PageView(s.cfg.Flash.PageSize)
	total := s.arr.Layout().LogicalPages()
	if pages > total {
		pages = total
	}
	if page+pages > total {
		page = total - pages
	}
	s.inFlight++
	record := s.measuring
	degraded := record && s.arr.Degraded()
	inGC := false
	if record {
		// Classify the request's phase at arrival (degraded wins over GC)
		// and sample the phase-describing gauges on the same window grid.
		n := 0
		for _, d := range s.devs {
			if d.InGC(now) {
				n++
			}
		}
		inGC = n > 0
		s.gcGauge.Set(int64(now), float64(n))
		if s.steer != nil {
			s.stGauge.Set(int64(now), float64(s.steer.Staging().FreeWriteSlots()))
		}
		if s.cfg.QueueLimit > 0 {
			s.inflGauge.Set(int64(now), float64(s.inFlight))
		}
	}
	seq := s.reqSeq
	s.reqSeq++
	if s.trace.Enabled() {
		s.trace.Emit(now, obs.Event{Kind: obs.KArrival, Dev: -1,
			Page: int64(page), Pages: int32(pages),
			Aux: boolInt(r.Write), Aux2: seq})
	}
	// The settled flag arbitrates between normal completion and the
	// deadline event (whichever fires first wins, the loser is a no-op).
	// Settling itself is a method, not a nested closure, so the common
	// no-deadline case allocates one callback per request instead of two.
	isWrite := r.Write
	settled := false
	lag := s.arrivalLag
	done := func(t sim.Time) { //lint:allow hotalloc sanctioned one completion callback per request; see comment above
		if settled {
			return
		}
		settled = true
		d := int64(t-now) + lag
		if s.trace.Enabled() {
			s.trace.Emit(t, obs.Event{Kind: obs.KComplete, Dev: -1, Page: -1,
				Aux: d, Aux2: seq})
		}
		s.settleRequest(now, seq, d, isWrite, record, degraded, inGC)
	}
	var tok *raid.Cancel
	deadline := sim.Time(s.cfg.DeadlineUs * float64(sim.Microsecond))
	if deadline > 0 {
		//lint:allow hotalloc opt-in DeadlineUs path: token and timer exist only when deadlines are configured
		tok = &raid.Cancel{}
		//lint:allow hotalloc opt-in DeadlineUs path: one deadline timer per request is the feature's cost
		s.eng.At(now+deadline, func(t sim.Time) {
			if settled {
				return
			}
			settled = true
			tok.Cancel() // queued sub-ops (backed-off retries, RMW phases) absorb
			s.deadlineHits++
			if s.trace.Enabled() {
				s.trace.Emit(t, obs.Event{Kind: obs.KDeadlineExceeded, Dev: -1,
					Page: int64(page), Pages: int32(pages),
					Aux: int64(deadline), Aux2: seq})
			}
			// The requester gave up at the deadline, so that is the
			// user-visible response time.
			s.settleRequest(now, seq, int64(deadline)+lag, isWrite, record, degraded, inGC)
		})
	}
	var err error
	if r.Write {
		err = s.arr.WriteCancelable(now, page, pages, tok, done)
	} else {
		err = s.arr.ReadCancelable(now, page, pages, tok, done)
	}
	if errors.Is(err, raid.ErrOverloaded) {
		// Admission control shed this request: no sub-ops were issued and
		// done will never fire. Count it, don't record a response time.
		settled = true
		s.inFlight--
		s.rejected++
		if s.onRequest != nil {
			s.onRequest(seq, 0, true)
		}
		if s.trace.Enabled() {
			s.trace.Emit(now, obs.Event{Kind: obs.KReject, Dev: -1,
				Page: int64(page), Pages: int32(pages),
				Aux: int64(s.arr.Inflight()), Aux2: seq})
		}
		return
	}
	if err != nil {
		// The range was clamped to the array above, so an error here is an
		// internal invariant violation, not bad trace input.
		panic(err)
	}
}

// settleRequest records one settled request's response time against the
// phase it was classified into at arrival. now is the arrival instant (the
// time-series window the request belongs to), d the response time in
// nanoseconds.
func (s *System) settleRequest(now sim.Time, seq, d int64, isWrite, record, degraded, inGC bool) {
	s.inFlight--
	if s.onRequest != nil {
		s.onRequest(seq, d, false)
	}
	if !record {
		return
	}
	s.lat.Observe(d)
	s.rec.Observe(int64(now), d)
	switch {
	case degraded:
		s.degLat.Observe(d)
	case inGC:
		s.gcLat.Observe(d)
		if !isWrite {
			s.gcRdLat.Observe(d)
		}
	default:
		s.quietLat.Observe(d)
	}
	if isWrite {
		s.writeLat.Observe(d)
	} else {
		s.readLat.Observe(d)
	}
}

// startScrub launches the patrol scrubber when the config enables it
// (Config.ScrubMBps > 0). It runs alongside the replayed workload, paced by
// its bandwidth cap, and finishes after Config.ScrubPasses full passes.
func (s *System) startScrub() error {
	if s.cfg.ScrubMBps <= 0 {
		return nil
	}
	sc, err := scrub.New(s.eng, s.arr, scrub.Config{
		MBps:   s.cfg.ScrubMBps,
		Passes: s.cfg.ScrubPasses,
	}, s.cfg.Flash.PageSize)
	if err != nil {
		return err
	}
	sc.Trace = s.trace
	if s.cfg.QueueLimit > 0 {
		sc.Pressure = s.arr.UnderPressure
	}
	s.scrubber = sc
	sc.Start(s.eng.Now())
	return nil
}

// Replay drives the trace through the system open-loop (arrivals at trace
// timestamps) and runs to quiescence, returning the measured results.
// Replay may be called once per System; build a fresh System per run.
func (s *System) Replay(tr Trace) (*Results, error) {
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	if len(tr) == 0 {
		return nil, fmt.Errorf("gcsteering: empty trace")
	}
	if err := s.startScrub(); err != nil {
		return nil, err
	}
	s.measuring = true
	s.scheduleArrivals(tr)
	s.eng.Run()
	s.drainSteering()
	return s.results(), nil
}

// scheduleArrivals streams the trace into the engine one arrival at a
// time (scheduling all arrivals up front would bloat the event queue). A
// single closure advances a captured cursor, rather than one closure per
// arrival; the submit-then-schedule order matches the old recursive shape,
// so event sequence numbers — and therefore traces — are unchanged.
//
// Hot root: the cursor closure re-fires once per trace request, so
// everything it reaches is replay steady-state. hotalloc enforcing this
// is what keeps the "single closure" promise above from regressing.
//
//gcsvet:hot
func (s *System) scheduleArrivals(tr Trace) {
	base := s.eng.Now()
	i := 0
	var step func(now sim.Time)
	step = func(now sim.Time) { //lint:allow hotalloc one cursor closure per replay, re-armed per arrival rather than reallocated
		s.submit(now, tr[i])
		if i+1 < len(tr) {
			i++
			s.eng.At(base+tr[i].Timestamp, step)
		}
	}
	s.eng.At(base+tr[0].Timestamp, step)
}

// drainSteering flushes redirected write data back after the run so the
// system ends consistent.
func (s *System) drainSteering() {
	if s.steer == nil {
		return
	}
	s.steer.DrainAll(s.eng.Now())
	s.eng.Run()
}

// RebuildTarget selects where reconstruction writes the regenerated data.
type RebuildTarget int

const (
	// RebuildToSpare writes to a dedicated replacement SSD (the
	// traditional workflow, used by the baselines and by GC-Steering
	// Dedicated in Fig. 11).
	RebuildToSpare RebuildTarget = iota
	// RebuildToReserved writes in parallel into the reserved space of the
	// survivors (GC-Steering Reserved's parallel reconstruction).
	RebuildToReserved
)

// ReplayDuringRebuild fails member failDisk at time zero, starts
// reconstruction at bandwidthMBps into the selected target, and replays
// the trace concurrently. The returned results carry the user-visible
// response times during recovery plus the rebuild duration.
func (s *System) ReplayDuringRebuild(tr Trace, failDisk int, bandwidthMBps float64, target RebuildTarget) (*Results, error) {
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	if len(tr) == 0 {
		return nil, fmt.Errorf("gcsteering: empty trace")
	}
	if err := s.arr.FailDisk(failDisk); err != nil {
		return nil, err
	}
	var sink rebuild.Sink
	switch target {
	case RebuildToSpare:
		spare, err := s.ensureSpare(s.cfg.Seed + 13)
		if err != nil {
			return nil, err
		}
		sink = &rebuild.SpareSink{Disk: spare}
	case RebuildToReserved:
		var survivors []raid.Disk
		for d, disk := range s.disks {
			if d != failDisk {
				survivors = append(survivors, disk)
			}
		}
		reserve := s.rebuildReservePages()
		if reserve < s.arr.Layout().UnitPages {
			return nil, fmt.Errorf("gcsteering: no reserved space for parallel rebuild (configure reserved staging with a large enough ReservedFrac)")
		}
		base := s.cfg.Flash.LogicalPages() - reserve
		var err error
		sink, err = rebuild.NewReservedSink(survivors, base, reserve)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("gcsteering: unknown rebuild target %v", target)
	}
	rb, err := rebuild.New(s.eng, s.arr, sink, bandwidthMBps, s.cfg.Flash.PageSize)
	if err != nil {
		return nil, err
	}
	rb.Trace = s.trace
	reclaimFirst := false
	if s.steer != nil {
		s.steer.SetFailedHome(failDisk)
		if s.cfg.Staging == StagingReserved {
			// The failed member's staged copies are gone with it.
			s.steer.Staging().SetUnavailable(failDisk)
			s.steer.DropStagedOn(int32(failDisk))
		}
		// §III-D case ②: when the staging space acts as the replacement,
		// previously redirected write data is reclaimed back before the
		// reconstruction starts.
		reclaimFirst = target == RebuildToReserved && s.steer.DTable().WriteLen() > 0
	}
	start := s.eng.Now()
	s.rebuildActive = true
	if s.busy != nil {
		s.busy.note(BusyRebuild, -1, start, true)
	}
	rb.OnComplete = func(now sim.Time) {
		s.rebuildDuration = now - start
		s.rebuildActive = false
		if s.busy != nil {
			s.busy.note(BusyRebuild, -1, now, false)
		}
		// Stop recording: Fig. 11 reports the response time *during* the
		// reconstruction, not the quiet period after it.
		s.measuring = false
		if s.steer != nil {
			s.steer.Staging().SetUnavailable(-1)
			s.steer.SetFailedHome(-1)
			s.steer.SetRebuilding(now, false)
		}
	}
	s.measuring = true
	if reclaimFirst {
		s.steer.DrainAll(start)
		var await func(now sim.Time)
		await = func(now sim.Time) {
			if s.steer.Draining() {
				s.eng.After(sim.Millisecond, await)
				return
			}
			s.steer.SetRebuilding(now, true)
			rb.Start(now)
		}
		s.eng.Defer(await)
	} else {
		if s.steer != nil {
			s.steer.SetRebuilding(start, true)
		}
		rb.Start(start)
	}
	s.scheduleArrivals(tr)
	s.eng.Run()
	s.drainSteering()
	res := s.results()
	res.RebuildDuration = s.rebuildDuration
	return res, nil
}

// ReplayWithFaults replays the trace while executing the configured fault
// plan (Config.Fault): scheduled whole-device failures, latent sector
// errors, latency spikes, and — when the plan caps a rebuild bandwidth —
// automatic repair-and-rebuild into the plan's RebuildTarget. The results
// carry the reliability measurements (window of vulnerability, rebuild
// time, degraded-mode latency, data-loss events) in Results.Fault.
//
// Like Replay, call it once per System.
func (s *System) ReplayWithFaults(tr Trace) (*Results, error) {
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	if len(tr) == 0 {
		return nil, fmt.Errorf("gcsteering: empty trace")
	}
	ctl, err := s.armFaults(s.cfg.Fault.plan(s.cfg.Seed))
	if err != nil {
		return nil, err
	}
	ctl.Start()
	if err := s.startScrub(); err != nil {
		return nil, err
	}
	s.measuring = true
	s.scheduleArrivals(tr)
	s.eng.Run()
	s.drainSteering()
	ctl.Finish(s.eng.Now())
	if err := ctl.Err(); err != nil {
		return nil, err
	}
	return s.results(), nil
}

// armFaults builds and wires the fault controller for the lowered plan —
// the shared setup behind ReplayWithFaults and the power-loss replay. The
// caller starts it.
func (s *System) armFaults(plan fault.Plan) (*fault.Controller, error) {
	ctl, err := fault.NewController(s.eng, s.arr, s.devs, plan, s.cfg.Flash.PageSize)
	if err != nil {
		return nil, err
	}
	ctl.Trace = s.trace
	ctl.SinkFor = s.faultSink
	ctl.OnFail = func(now sim.Time, disk int) {
		if s.busy != nil {
			// The busy window opens at the loss, not the rebuild start: the
			// array serves degraded reads for the whole failure-to-repair
			// span, which is exactly the window cluster routing must avoid.
			s.busy.note(BusyRebuild, disk, now, true)
		}
		if s.health != nil {
			// A dead disk is the array's problem, not the breaker's: clear
			// any open quarantine so reinstatement probes stop.
			s.health.Reset(now, disk)
		}
		if s.steer == nil {
			return
		}
		s.steer.SetFailedHome(disk)
		if s.cfg.Staging == StagingReserved {
			// The failed member's staged copies are gone with it.
			s.steer.Staging().SetUnavailable(disk)
			s.steer.DropStagedOn(int32(disk))
		}
	}
	ctl.OnRebuildStart = func(now sim.Time, disk int) {
		s.rebuildActive = true
		if s.steer != nil {
			s.steer.SetRebuilding(now, true)
		}
	}
	ctl.OnRepair = func(now sim.Time, disk int) {
		s.rebuildActive = false
		if s.busy != nil {
			s.busy.note(BusyRebuild, disk, now, false)
		}
		if s.steer != nil {
			s.steer.Staging().SetUnavailable(-1)
			s.steer.SetFailedHome(-1)
			s.steer.SetRebuilding(now, false)
		}
	}
	s.faults = ctl
	return ctl, nil
}

// faultSink builds the rebuild sink for the plan's RebuildTarget plus the
// replacement disk installed once that rebuild completes. Each failure gets
// a fresh replacement SSD, so repeated failures rebuild onto clean devices.
func (s *System) faultSink(now sim.Time, failDisk int) (rebuild.Sink, raid.Disk, error) {
	repl, err := s.newReplacement()
	if err != nil {
		return nil, nil, err
	}
	switch s.cfg.Fault.RebuildTarget {
	case RebuildToSpare:
		return &rebuild.SpareSink{Disk: repl}, repl, nil
	case RebuildToReserved:
		var survivors []raid.Disk
		for d, disk := range s.disks {
			if s.arr.Alive(d) && d != failDisk {
				survivors = append(survivors, disk)
			}
		}
		reserve := s.rebuildReservePages()
		if reserve < s.arr.Layout().UnitPages {
			return nil, nil, fmt.Errorf("gcsteering: no reserved space for parallel rebuild (configure reserved staging with a large enough ReservedFrac)")
		}
		base := s.cfg.Flash.LogicalPages() - reserve
		sink, err := rebuild.NewReservedSink(survivors, base, reserve)
		if err != nil {
			return nil, nil, err
		}
		// The reconstruction lands in the survivors' reserved space; the
		// fresh replacement fills the failed slot so the array is redundant
		// again as soon as the parallel writes finish (the WOV endpoint).
		// Migrating the data back onto the replacement happens off the
		// critical path and is not modelled.
		return sink, repl, nil
	default:
		return nil, nil, fmt.Errorf("gcsteering: unknown rebuild target %v", s.cfg.Fault.RebuildTarget)
	}
}

// newReplacement creates a fresh SSD to take over a failed slot.
func (s *System) newReplacement() (*ssd.Device, error) {
	devCfg := ssd.Config{
		Geometry:        s.cfg.Flash,
		Latency:         s.cfg.Latency,
		GCLowWater:      s.cfg.GCLowWater,
		GCHighWater:     s.cfg.GCHighWater,
		ForcedGCVictims: s.cfg.ForcedGCVictims,
		GCOverhead:      sim.Time(s.cfg.GCOverheadMs * float64(sim.Millisecond)),
	}
	// IDs continue past the members and the optional dedicated spare.
	id := s.cfg.Disks + 1 + s.nrepl
	repl, err := ssd.New(id, s.eng, devCfg)
	if err != nil {
		return nil, err
	}
	repl.Trace = s.trace
	s.nrepl++
	return repl, nil
}

// Now returns the engine clock (mainly for tests and custom drivers).
func (s *System) Now() Time { return s.eng.Now() }

// Events returns how many engine events have fired so far — the
// simulator's unit of work, which the benchmark emitter divides by wall
// time to report events/sec.
func (s *System) Events() uint64 { return s.eng.Fired() }

// ObserveRequests installs fn, invoked once per submitted request as it
// settles: seq is the request's submission index (0-based, in trace
// order), latNs the user-visible response time in nanoseconds (the
// deadline for deadline-cancelled requests), and rejected marks requests
// shed by admission control (their latNs is 0). The cluster layer uses it
// to attribute shard latencies back to tenants. Call before Replay; a nil
// fn removes the hook.
func (s *System) ObserveRequests(fn func(seq int64, latNs int64, rejected bool)) {
	s.onRequest = fn
}

// busyLog accumulates BusyInterval windows from the GC hub, the health
// monitor, and the rebuild lifecycle. It is driven synchronously by the
// single-threaded engine, so interval order is deterministic. Opening an
// already-open (kind, dev) slot or closing a closed one is a no-op, which
// lets the failure and rebuild-start hooks both assert the same window.
type busyLog struct {
	intervals []BusyInterval
	open      []BusyInterval // End unset while the window is open
}

func newBusyLog(disks int) *busyLog {
	return &busyLog{open: make([]BusyInterval, 0, disks+1)}
}

// note opens (active=true) or closes a busy window for (kind, dev).
func (b *busyLog) note(kind BusyKind, dev int, now sim.Time, active bool) {
	for i, w := range b.open {
		if w.Kind != kind || w.Dev != dev {
			continue
		}
		if active {
			return // already open
		}
		w.End = now
		b.intervals = append(b.intervals, w)
		b.open = append(b.open[:i], b.open[i+1:]...)
		return
	}
	if active {
		b.open = append(b.open, BusyInterval{Kind: kind, Dev: dev, Start: now})
	}
}

// finish closes every still-open window at the run end. Idempotent.
func (b *busyLog) finish(now sim.Time) {
	for _, w := range b.open {
		w.End = now
		b.intervals = append(b.intervals, w)
	}
	b.open = b.open[:0]
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
