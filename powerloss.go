package gcsteering

import (
	"fmt"
	"sort"

	"gcsteering/internal/fault"
	"gcsteering/internal/obs"
	"gcsteering/internal/raid"
	"gcsteering/internal/scrub"
	"gcsteering/internal/sim"
	"gcsteering/internal/trace"
)

// CrashStats describes one power-loss run: what the cut interrupted, what
// the crash physically left inconsistent, and what the post-restart resync
// found and repaired (Results.Crash).
type CrashStats struct {
	// Enabled marks a run that actually executed a power loss.
	Enabled bool
	// Journaled reports whether the intent journal drove the recovery.
	Journaled bool
	// CrashAt is the cut instant.
	CrashAt Time
	// PreCrashRequests counts requests that settled before the cut;
	// PreCrash summarizes their response times.
	PreCrashRequests int64
	PreCrash         LatencySummary
	// InFlightLost counts requests that were in flight at the cut and
	// never completed.
	InFlightLost int
	// DirtyStripes is the number of stripes the intent journal held open
	// at the cut — the journal-on resync scope.
	DirtyStripes int
	// TornPages counts page programs that were mid-flight at the cut and
	// persisted CRC-failing garbage.
	TornPages int
	// InconsistentStripes is the ground truth: stripes the cut left with
	// disagreeing legs (torn pages, or some legs persisted while others
	// never started). Every one of them needs a resync before a later
	// device failure can reconstruct through it safely.
	InconsistentStripes int
	// Resync* describe the mount-time resync walk: its scope, how many of
	// the walked stripes were found inconsistent and repaired, the torn
	// member units rewritten, and the wall-clock (simulated) duration.
	ResyncStripesWalked int64
	ResyncFound         int64
	ResyncTornUnits     int64
	ResyncDuration      Time
	ResyncPagesRead     int64
	ResyncPagesWritten  int64
	// ServedDuringResync marks the journal-off mode: the array cannot
	// afford to stall for a full-array walk, so it serves while the scrub
	// runs — the window of vulnerability the journal closes.
	ServedDuringResync bool
}

// heldArrival is a request that arrived while the remounted array was
// still resyncing (journal-on mode gates serving on resync completion).
type heldArrival struct {
	at sim.Time
	r  Record
}

// ReplayWithPowerLoss replays the trace through a system whose power is
// cut at Config.PowerLossAtMs, then remounts and recovers:
//
//  1. The pre-crash system runs normally — with the intent journal armed
//     (it must exist in both modes: the simulation needs the ground truth
//     even when recovery is forbidden from using it) and page-program
//     windows tracked — until the cut. In-flight requests are lost; page
//     programs straddling the instant tear, persisting garbage that fails
//     its CRC32-C on read.
//  2. The array remounts as a fresh identically-seeded system (the same
//     warmed steady-state flash; page contents are not modeled beyond the
//     defect sets) with the torn pages installed as CRC-failing defects.
//     Fault-plan failures that predate the cut re-fail at time zero — a
//     rebuild that was in flight restarts from nothing, as it must when
//     its progress metadata died with the power.
//  3. With Config.IntentJournal, recovery replays the journal and resyncs
//     only the stripes it held open, holding arrivals until the walk
//     completes (their wait is charged to their response times). Without
//     it, recovery has no scope information: the array serves immediately
//     while a full-array scrub hunts for the inconsistencies — every
//     stripe it has not yet reached is the write hole, open.
//  4. The rest of the trace replays against the recovered array.
//
// The returned Results describe the post-crash period (the paper-style
// degraded measurement); Results.Crash carries the crash and recovery
// accounting, including the pre-crash latency summary.
//
// GC-Steering's staged redirected data is host data, and a cut while it
// sits in staging loses it: the steering directory is volatile in this
// model. Crash experiments therefore run the LGC scheme; steering crash
// semantics are future work. Config.ScrubMBps applies only to the
// pre-crash half: after the remount the resync walk is the scrub.
//
// Like Replay, the config is consumed by one call; traces from crash runs
// are not comparable to healthy-run traces (the clock restarts at the
// remount).
func ReplayWithPowerLoss(cfg Config, tr Trace) (*Results, error) {
	if cfg.PowerLossAtMs <= 0 {
		// No cut configured: behave exactly like the plain entry points so
		// harness call sites can share one path.
		sys, err := New(cfg)
		if err != nil {
			return nil, err
		}
		if cfg.Fault.Enabled() {
			return sys.ReplayWithFaults(tr)
		}
		return sys.Replay(tr)
	}
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	if len(tr) == 0 {
		return nil, fmt.Errorf("gcsteering: empty trace")
	}
	crashAt := sim.Time(cfg.PowerLossAtMs * float64(sim.Millisecond))

	// --- Phase 1: run to the cut. ---
	sysA, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sysA.arr.Intents = &raid.IntentLog{Journaled: cfg.IntentJournal}
	for _, d := range sysA.devs {
		d.TrackPrograms = true
	}
	if cfg.Fault.Enabled() {
		ctl, err := sysA.armFaults(cfg.Fault.plan(cfg.Seed))
		if err != nil {
			return nil, err
		}
		ctl.Start()
	}
	if err := sysA.startScrub(); err != nil {
		return nil, err
	}
	sysA.measuring = true
	sysA.scheduleArrivals(tr)
	sysA.eng.RunUntil(crashAt)

	// --- Harvest the crash state. ---
	intents := sysA.arr.OpenIntents()
	lay := sysA.arr.Layout()
	unitPages := lay.UnitPages
	diskPages := lay.DiskPages

	// Torn pages per device, restricted to the array region: a program in
	// the reserved tail (staging, rebuild reserve) that tears is simply
	// lost with the volatile steering state it backed.
	tornByDev := make([][]int, len(sysA.devs))
	tornPages := 0
	for d, dev := range sysA.devs {
		for _, lpn := range dev.TornPrograms(crashAt) {
			if lpn >= diskPages {
				continue
			}
			tornByDev[d] = append(tornByDev[d], lpn)
			tornPages++
		}
		sort.Ints(tornByDev[d])
	}

	// Ground truth: a stripe is inconsistent when its write was cut with
	// legs disagreeing — some legs persisted while others had not (done >
	// 0), or a leg's pages were torn mid-program. An issued write none of
	// whose legs had started leaves the old stripe intact.
	inconsistent := map[int]bool{}
	dirtySet := map[int]bool{}
	var dirtyOrder []int
	for _, it := range intents {
		if !dirtySet[it.Stripe] {
			dirtySet[it.Stripe] = true
			dirtyOrder = append(dirtyOrder, it.Stripe)
		}
		if !it.Issued || it.LegsDone == it.Legs {
			continue
		}
		if it.LegsDone > 0 {
			inconsistent[it.Stripe] = true
			continue
		}
		for _, leg := range it.Pending {
			if overlapsSorted(tornByDev[leg.Disk], leg.Page, leg.Pages) {
				inconsistent[it.Stripe] = true
				break
			}
		}
	}
	// Torn pages outside any open intent (scrub repair writes are not
	// journaled) still dirty their stripe: they are self-announcing — the
	// CRC fails — so a real controller's journal replay would pick them up
	// from the media scan of the marked region; ours folds them into the
	// dirty list directly.
	for _, pages := range tornByDev {
		for _, lpn := range pages {
			st := lpn / unitPages
			inconsistent[st] = true
			if !dirtySet[st] {
				dirtySet[st] = true
				dirtyOrder = append(dirtyOrder, st)
			}
		}
	}

	crash := CrashStats{
		Enabled:             true,
		Journaled:           cfg.IntentJournal,
		CrashAt:             crashAt,
		PreCrashRequests:    int64(sysA.lat.Count()),
		PreCrash:            sysA.lat.Summarize(),
		InFlightLost:        sysA.inFlight,
		DirtyStripes:        len(dirtyOrder),
		TornPages:           tornPages,
		InconsistentStripes: len(inconsistent),
		ServedDuringResync:  !cfg.IntentJournal,
	}
	if sysA.trace.Enabled() {
		sysA.trace.Emit(crashAt, obs.Event{Kind: obs.KPowerLoss, Dev: -1, Page: -1,
			Aux: int64(crash.DirtyStripes), Aux2: int64(crash.InFlightLost)})
		for d, pages := range tornByDev {
			for _, lpn := range pages {
				sysA.trace.Emit(crashAt, obs.Event{Kind: obs.KTornWrite, Dev: int32(d),
					Page: int64(lpn), Pages: 1, Aux: int64(lpn / unitPages)})
			}
		}
	}

	// --- Phase 2: remount, resync, serve the rest of the trace. ---
	cfgB := cfg
	cfgB.Fault = cfg.Fault.shiftPast(crashAt)
	sysB, err := New(cfgB)
	if err != nil {
		return nil, err
	}
	// The remounted members need fault hooks even without a fault plan:
	// the torn pages are installed as CRC-failing defects. With a plan,
	// the controller owns the injectors; Tear goes through its set.
	var injs []*fault.Injector
	if cfgB.Fault.Enabled() {
		ctl, err := sysB.armFaults(cfgB.Fault.plan(cfgB.Seed))
		if err != nil {
			return nil, err
		}
		ctl.Start()
		injs = ctl.Injectors()
	} else {
		injs = fault.Install(sysB.devs, cfgB.Fault.plan(cfgB.Seed))
	}
	for d, pages := range tornByDev {
		injs[d].Tear(pages)
	}

	// Resync scope: the journal's dirty list, or — journal off — every
	// stripe, walked in order.
	var stripes []int
	if cfg.IntentJournal {
		stripes = dirtyOrder
	} else {
		stripes = make([]int, lay.Stripes())
		for i := range stripes {
			stripes[i] = i
		}
	}
	mbps := cfg.ResyncMBps
	if mbps <= 0 {
		mbps = 200
	}
	rs, err := scrub.NewResync(sysB.eng, sysB.arr, mbps, cfg.Flash.PageSize, stripes)
	if err != nil {
		return nil, err
	}
	rs.Inconsistent = func(st int) bool { return inconsistent[st] }
	rs.Trace = sysB.trace

	// Suffix of the trace: arrivals after the cut, re-based to the remount.
	var suffix Trace
	for _, r := range tr {
		if r.Timestamp > crashAt {
			r.Timestamp -= crashAt
			suffix = append(suffix, r)
		}
	}

	sysB.measuring = true
	var held []heldArrival
	gateOpen := !cfg.IntentJournal // journal off: serve during the walk
	rs.OnComplete = func(now sim.Time) {
		crash.ResyncDuration = now
		if gateOpen {
			return
		}
		gateOpen = true
		for _, h := range held {
			sysB.arrivalLag = int64(now - h.at)
			sysB.submit(now, h.r)
		}
		sysB.arrivalLag = 0
		held = nil
	}
	rs.Start(0)
	if len(suffix) > 0 {
		i := 0
		var step func(now sim.Time)
		step = func(now sim.Time) {
			if gateOpen {
				sysB.submit(now, suffix[i])
			} else {
				held = append(held, heldArrival{at: now, r: suffix[i]})
			}
			if i+1 < len(suffix) {
				i++
				sysB.eng.At(suffix[i].Timestamp, step)
			}
		}
		sysB.eng.At(suffix[0].Timestamp, step)
	}
	sysB.eng.Run()
	sysB.drainSteering()
	if sysB.faults != nil {
		sysB.faults.Finish(sysB.eng.Now())
		if err := sysB.faults.Err(); err != nil {
			return nil, err
		}
	}

	st := rs.Stats()
	crash.ResyncStripesWalked = st.StripesWalked
	crash.ResyncFound = st.Inconsistent
	crash.ResyncTornUnits = st.TornUnitsRepaired
	crash.ResyncPagesRead = st.PagesRead
	crash.ResyncPagesWritten = st.PagesWritten
	res := sysB.results()
	res.Crash = crash
	return res, nil
}

// overlapsSorted reports whether [page, page+pages) intersects any entry
// of the sorted page list.
func overlapsSorted(sorted []int, page, pages int) bool {
	i := sort.SearchInts(sorted, page)
	return i < len(sorted) && sorted[i] < page+pages
}

// shiftPast rewrites the fault plan for the remounted system: failures and
// slowdown windows that predate the cut re-apply at time zero (their
// effect — a missing member, a sick device — survives the power cycle;
// any rebuild progress does not), and later ones shift left by the cut.
func (p FaultPlan) shiftPast(crashAt sim.Time) FaultPlan {
	out := p
	out.Failures = nil
	out.Slowdowns = nil
	cutMs := float64(crashAt) / float64(sim.Millisecond)
	for _, f := range p.Failures {
		if f.AtMs <= cutMs {
			f.AtMs = 0
		} else {
			f.AtMs -= cutMs
		}
		out.Failures = append(out.Failures, f)
	}
	for _, s := range p.Slowdowns {
		if s.StartMs+s.DurationMs <= cutMs {
			continue // fully spent before the cut
		}
		if s.StartMs < cutMs {
			s.DurationMs -= cutMs - s.StartMs
			s.StartMs = 0
		} else {
			s.StartMs -= cutMs
		}
		out.Slowdowns = append(out.Slowdowns, s)
	}
	return out
}
